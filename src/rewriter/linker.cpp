#include "rewriter/linker.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <stdexcept>

namespace sensmart::rw {

uint32_t scaled_body_words(ServiceKind kind, double scale) {
  return static_cast<uint32_t>(std::lround(std::ceil(body_words(kind) * scale)));
}

Linker::Linker(RewriteOptions opts, bool merge_trampolines)
    : opts_(opts) {
  pool_.set_merging(merge_trampolines);
}

size_t Linker::add(const assembler::Image& img) {
  if (linked_) throw std::logic_error("Linker::add after link()");
  NaturalizedProgram p = rewrite(img, cursor_, pool_, opts_);
  // Program layout: [naturalized code][shift table]. The map base is the
  // code base; the shift table is flash data consulted by the kernel.
  cursor_ += uint32_t(p.code.size()) + p.shift_entries;
  progs_.push_back(std::move(p));
  images_.push_back(img);
  return progs_.size() - 1;
}

LinkedSystem Linker::link() {
  if (linked_) throw std::logic_error("link() called twice");
  linked_ = true;

  LinkedSystem sys;
  sys.options = opts_;
  sys.tramp_base = cursor_;
  sys.services = pool_.services();
  sys.service_requests = pool_.requests();
  sys.requests_by_kind = pool_.requests_by_kind();

  // Place trampolines. With tail merging, the first trampoline of each
  // kind carries the full handler body; later ones of the same kind keep
  // only the stub that materializes their site identity and jump into the
  // first one's tail.
  uint32_t a = sys.tramp_base;
  std::array<bool, size_t(kNumServiceKinds)> kind_seen{};
  for (const Service& s : sys.services) {
    sys.service_addr.push_back(a);
    const uint32_t full = scaled_body_words(s.kind, opts_.body_scale);
    uint32_t w = full;
    if (opts_.tramp_tail_merge && kind_seen[size_t(s.kind)]) {
      w = std::max<uint32_t>(
          2, static_cast<uint32_t>(
                 std::lround(std::ceil(stub_words(s.kind) * opts_.body_scale))));
      if (w > full) w = full;
      sys.tail_shared_words += full - w;
    }
    kind_seen[size_t(s.kind)] = true;
    sys.service_words.push_back(w);
    a += w;
  }
  sys.tramp_words = a - sys.tramp_base;

  if (a > 0x10000)
    throw std::runtime_error("linked image exceeds 128 KB program memory");

  sys.flash.assign(a, 0xFFFF);

  for (size_t pi = 0; pi < progs_.size(); ++pi) {
    NaturalizedProgram& p = progs_[pi];

    // Resolve trampoline callsites.
    for (const auto& cs : p.callsites)
      p.code[cs.code_index + 1] =
          static_cast<uint16_t>(sys.service_addr[cs.service]);

    // Copy code and shift table into flash.
    std::copy(p.code.begin(), p.code.end(), sys.flash.begin() + p.base);
    const uint32_t table_base = p.base + uint32_t(p.code.size());
    {
      // The shift table is stored as the sorted original word addresses.
      uint32_t w = table_base;
      for (uint32_t orig : p.map.inflated_sites())
        sys.flash[w++] = static_cast<uint16_t>(orig);
    }

    ProgramInfo info;
    info.name = p.name;
    info.base = p.base;
    info.nat_words = uint32_t(p.code.size());
    info.table_base = table_base;
    info.map = p.map;
    info.heap_size = p.heap_size;
    info.entry_nat = p.entry_naturalized();
    info.native_bytes = p.orig_words * 2;
    info.rewritten_bytes = uint32_t(p.code.size()) * 2;
    info.shift_table_bytes = p.shift_entries * 2;
    info.patched_sites = p.patched_sites;

    std::set<uint32_t> used;
    for (const auto& cs : p.callsites) used.insert(cs.service);
    uint32_t tw = 0;
    for (uint32_t svc : used) tw += sys.service_words[svc];
    info.trampoline_bytes = tw * 2;

    sys.programs.push_back(std::move(info));
  }

  // Trampoline markers: Break + service index.
  for (size_t i = 0; i < sys.services.size(); ++i) {
    sys.flash[sys.service_addr[i]] = 0x9598;  // BREAK
    sys.flash[sys.service_addr[i] + 1] = static_cast<uint16_t>(i);
  }

  return sys;
}

}  // namespace sensmart::rw
