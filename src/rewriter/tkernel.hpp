// t-kernel comparison mode (Gu & Stankovic, SenSys'06), modelled as a
// configuration of the same rewriting/runtime machinery:
//   * on-node, page-at-a-time rewriting: inline trampoline bodies, no
//     cross-site merging, larger code inflation, plus a one-time warm-up
//     rewriting charge of ~1 second at start-up;
//   * asymmetric protection: only the kernel area is guarded, addressing is
//     identity (no per-task logical regions), so memory checks are cheaper;
//   * single application, no time-sliced concurrency between applications.
#pragma once

#include "kernel/kernel.hpp"
#include "rewriter/rewriter.hpp"

namespace sensmart::rw {

// Rewrite options modelling the t-kernel's inline, unmerged rewriting.
RewriteOptions tkernel_rewrite_options();

// Pass to Linker's merge_trampolines parameter.
inline constexpr bool kTKernelMerging = false;

}  // namespace sensmart::rw

namespace sensmart::kern {

// Kernel configuration modelling the t-kernel runtime: cheaper checks,
// kernel-only protection, ~1 s warm-up.
KernelConfig tkernel_config();

}  // namespace sensmart::kern
