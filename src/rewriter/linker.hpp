// Links naturalized application programs with the trampoline region into
// one flash image (Figure 1's "linker" step). Trampolines are shared and
// merged across programs; each program additionally carries its shift
// table in flash. Words 0..15 are reserved for the kernel vector area.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "rewriter/rewriter.hpp"

namespace sensmart::rw {

inline constexpr uint32_t kAppBase = 16;

struct ProgramInfo {
  std::string name;
  uint32_t base = 0;        // first word of the naturalized code
  uint32_t nat_words = 0;   // naturalized code size (words)
  uint32_t table_base = 0;  // flash placement of the shift table
  AddressMap map;
  uint16_t heap_size = 0;
  uint32_t entry_nat = 0;

  // Inflation accounting (Fig. 4), all in bytes.
  uint32_t native_bytes = 0;
  uint32_t rewritten_bytes = 0;   // naturalized code
  uint32_t shift_table_bytes = 0;
  uint32_t trampoline_bytes = 0;  // distinct trampolines this program uses
  uint32_t patched_sites = 0;

  double inflation() const {
    return double(rewritten_bytes + shift_table_bytes + trampoline_bytes) /
           double(native_bytes);
  }
};

struct LinkedSystem {
  std::vector<uint16_t> flash;
  std::vector<ProgramInfo> programs;
  std::vector<Service> services;
  std::vector<uint32_t> service_addr;  // flash word address per service
  std::vector<uint32_t> service_words;  // placed size per service (words)
  uint32_t tramp_base = 0;
  uint32_t tramp_words = 0;
  uint32_t service_requests = 0;  // before merging
  // Merge statistics (Fig. 4 reporting): pre-merge requests per kind, and
  // the flash words saved by peephole tail merging across the pool.
  std::array<uint32_t, size_t(kNumServiceKinds)> requests_by_kind{};
  uint32_t tail_shared_words = 0;
  RewriteOptions options;
};

class Linker {
 public:
  explicit Linker(RewriteOptions opts = {}, bool merge_trampolines = true);

  // Rewrite and add one application program. Returns its index.
  size_t add(const assembler::Image& img);

  LinkedSystem link();

 private:
  RewriteOptions opts_;
  ServicePool pool_;
  std::vector<NaturalizedProgram> progs_;
  std::vector<assembler::Image> images_;  // kept for entry/heap info
  uint32_t cursor_ = kAppBase;
  bool linked_ = false;
};

// body_words() scaled by the rewrite option's body_scale.
uint32_t scaled_body_words(ServiceKind kind, double scale);

}  // namespace sensmart::rw
