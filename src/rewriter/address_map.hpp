// The shift table of §IV-C2: a sorted array recording which original
// instructions were inflated from one flash word to two by the rewriting.
// Together with the program's load base it maps original program addresses
// to naturalized ones (and back), preserving the "approximate linearity"
// the paper relies on: naturalized(a) = base + a + |{e in table : e < a}|.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace sensmart::rw {

class AddressMap {
 public:
  AddressMap() = default;
  AddressMap(uint32_t base, std::vector<uint32_t> inflated_sites)
      : base_(base), orig_inflated_(std::move(inflated_sites)) {
    std::sort(orig_inflated_.begin(), orig_inflated_.end());
    nat_inflated_.reserve(orig_inflated_.size());
    for (size_t i = 0; i < orig_inflated_.size(); ++i)
      nat_inflated_.push_back(base_ + orig_inflated_[i] + uint32_t(i));
  }

  uint32_t base() const { return base_; }
  size_t entries() const { return orig_inflated_.size(); }
  const std::vector<uint32_t>& inflated_sites() const { return orig_inflated_; }
  // Flash bytes the table itself occupies (16-bit address per entry).
  uint32_t table_bytes() const { return uint32_t(entries()) * 2; }

  // Original word address -> naturalized word address.
  uint32_t to_naturalized(uint32_t orig) const {
    const auto it = std::lower_bound(orig_inflated_.begin(),
                                     orig_inflated_.end(), orig);
    return base_ + orig + uint32_t(it - orig_inflated_.begin());
  }

  // Naturalized word address -> original word address (exact inverse on
  // instruction boundaries).
  uint32_t to_original(uint32_t nat) const {
    const auto it =
        std::lower_bound(nat_inflated_.begin(), nat_inflated_.end(), nat);
    return nat - base_ - uint32_t(it - nat_inflated_.begin());
  }

 private:
  uint32_t base_ = 0;
  std::vector<uint32_t> orig_inflated_;  // original addresses, sorted
  std::vector<uint32_t> nat_inflated_;   // their naturalized addresses
};

}  // namespace sensmart::rw
