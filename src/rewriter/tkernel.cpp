#include "rewriter/tkernel.hpp"

namespace sensmart::rw {

RewriteOptions tkernel_rewrite_options() {
  RewriteOptions o;
  o.patch_branches = true;   // the t-kernel also traps backward branches
  o.grouped_access = false;  // page-local rewriting: no basic-block analysis
  // No basic-block analysis also means none of the dataflow tiers built on
  // it, and replicated inline bodies leave no shared tails to merge.
  o.coalesce_translations = false;
  o.collapse_stack_checks = false;
  o.fast_direct_heap = false;
  o.tramp_tail_merge = false;
  // Inline bodies replicated at every site instead of shared trampolines
  // (modest per-body size, but no merging makes the total much larger).
  o.body_scale = 1.6;
  return o;
}

}  // namespace sensmart::rw

namespace sensmart::kern {

KernelConfig tkernel_config() {
  KernelConfig c;
  c.protect_app_regions = false;  // asymmetric: kernel memory only
  c.warmup_cycles = 7'372'800;    // ~1 s on-node rewriting at start-up
  // Lighter checks: no per-task region translation, only a kernel bound.
  c.costs.ind_heap = 22;
  c.costs.ind_stack = 18;
  c.costs.ind_io = 20;
  c.costs.ind_grouped = 18;
  c.costs.direct_other = 10;
  c.costs.stack_pushpop = 24;
  c.costs.stack_callret = 34;
  c.costs.get_sp = 10;
  c.costs.set_sp = 16;
  c.costs.reserved_io = 24;
  c.costs.prog_mem = 410;  // on-node lookup structures are slower
  return c;
}

}  // namespace sensmart::kern
