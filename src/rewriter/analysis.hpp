// Binary analysis performed by the base-station rewriter before patching:
// linear decode, basic-block discovery, grouped-memory-access detection
// (§IV-C2: adjacent LDD/STD through the same unmodified index register are
// translated once; the paper observes 2- and 4-instruction groups for word
// and double-word data), and the two block-local dataflow passes layered on
// top of it — pointer-provenance translation coalescing and stack-run
// collapsing (DESIGN.md §6d).
#pragma once

#include <cstdint>
#include <vector>

#include "assembler/assembler.hpp"
#include "isa/codec.hpp"

namespace sensmart::rw {

enum class GroupRole : uint8_t { None, Leader, Follower };

// Role of a PUSH/POP site inside a collapsed same-op run: the leader's
// trampoline checks bounds for the whole run, followers stay native.
enum class StackRunRole : uint8_t { None, Leader, Follower };

struct DecodedSite {
  uint32_t addr = 0;  // original word address
  isa::Instruction ins;
  int size = 1;  // words
  bool is_data = false;  // constant flash data: copied verbatim
  bool block_leader = false;
  GroupRole group = GroupRole::None;
  uint8_t group_min_q = 0;   // leader: smallest displacement in the group
  uint8_t group_span = 0;    // leader: max displacement minus min
  // Translation coalescing: a later access in the same block through a
  // pointer whose provenance is still live takes the check-only reuse tier.
  bool coalesced = false;
  StackRunRole stack_run = StackRunRole::None;
  uint8_t run_extra = 0;     // stack-run leader: members beyond itself
  uint16_t run_regs = 0;     // leader: follower registers, 5 bits each
};

// Decode the whole image and annotate basic-block leaders and access groups.
// `grouping` disables the grouped-access optimization when false (ablation).
std::vector<DecodedSite> analyze(const assembler::Image& img, bool grouping);

// Pointer-provenance coalescing pass: within a basic block, after one
// translated indirect access through X/Y/Z, later indirect accesses through
// the same pointer — not rebuilt in between, with no relocation-capable or
// blocking service in between — are marked `coalesced` and take the
// check-only reuse tier instead of a full translation. Grouped followers
// (already cheaper) and group leaders (their window check guards their
// followers) are left untouched. Returns the number of sites marked.
size_t mark_coalesced(std::vector<DecodedSite>& sites);

// Stack-run collapsing pass: maximal runs of adjacent same-op PUSH (or POP)
// sites inside one block, capped at `cap` members, become one leader whose
// trampoline performs the whole run — with the identical per-member bounds
// check, relocation request and kill condition the uncollapsed services
// would apply, so the machine-state trajectory is the same with the pass on
// or off — while the follower sites shrink to one-word placeholders. The
// follower registers ride in `run_regs` (5 bits each, run order), which
// caps the run at 1 leader + 3 followers. Returns the follower count
// (trampoline calls saved).
size_t mark_stack_runs(std::vector<DecodedSite>& sites, int cap = 4);

// Count of sites whose role is Follower (used by inflation stats/tests).
size_t count_followers(const std::vector<DecodedSite>& sites);

}  // namespace sensmart::rw
