// Binary analysis performed by the base-station rewriter before patching:
// linear decode, basic-block discovery, and grouped-memory-access detection
// (§IV-C2: adjacent LDD/STD through the same unmodified index register are
// translated once; the paper observes 2- and 4-instruction groups for word
// and double-word data).
#pragma once

#include <cstdint>
#include <vector>

#include "assembler/assembler.hpp"
#include "isa/codec.hpp"

namespace sensmart::rw {

enum class GroupRole : uint8_t { None, Leader, Follower };

struct DecodedSite {
  uint32_t addr = 0;  // original word address
  isa::Instruction ins;
  int size = 1;  // words
  bool is_data = false;  // constant flash data: copied verbatim
  bool block_leader = false;
  GroupRole group = GroupRole::None;
  uint8_t group_min_q = 0;   // leader: smallest displacement in the group
  uint8_t group_span = 0;    // leader: max displacement minus min
};

// Decode the whole image and annotate basic-block leaders and access groups.
// `grouping` disables the grouped-access optimization when false (ablation).
std::vector<DecodedSite> analyze(const assembler::Image& img, bool grouping);

// Count of sites whose role is Follower (used by inflation stats/tests).
size_t count_followers(const std::vector<DecodedSite>& sites);

}  // namespace sensmart::rw
