#include "rewriter/analysis.hpp"

#include <algorithm>
#include <map>

namespace sensmart::rw {

using isa::Instruction;
using isa::Op;

namespace {

bool is_control_transfer(Op op) {
  switch (op) {
    case Op::Rjmp:
    case Op::Rcall:
    case Op::Jmp:
    case Op::Call:
    case Op::Ijmp:
    case Op::Icall:
    case Op::Ret:
    case Op::Reti:
    case Op::Brbs:
    case Op::Brbc:
      return true;
    default:
      return false;
  }
}

bool is_skip(Op op) {
  return op == Op::Cpse || op == Op::Sbrc || op == Op::Sbrs ||
         op == Op::Sbic || op == Op::Sbis;
}

// Groupable access: LDD/STD through Y or Z (plain LD Y/Z decode as q = 0).
bool groupable(const Instruction& ins) {
  return ins.op == Op::Ldd || ins.op == Op::Std;
}

}  // namespace

std::vector<DecodedSite> analyze(const assembler::Image& img, bool grouping) {
  std::vector<DecodedSite> sites;
  std::map<uint32_t, size_t> by_addr;

  auto data_range_at = [&img](uint32_t pc) -> const std::pair<uint32_t, uint32_t>* {
    for (const auto& r : img.data_ranges)
      if (pc >= r.first && pc < r.second) return &r;
    return nullptr;
  };

  for (uint32_t pc = 0; pc < img.code.size();) {
    DecodedSite s;
    s.addr = pc;
    if (const auto* r = data_range_at(pc)) {
      s.is_data = true;
      s.size = static_cast<int>(r->second - pc);
      by_addr[pc] = sites.size();
      sites.push_back(s);
      pc = r->second;
      continue;
    }
    s.ins = isa::decode(img.code, pc);
    s.size = isa::size_words(s.ins.op);
    by_addr[pc] = sites.size();
    sites.push_back(s);
    pc += s.size;
  }

  auto mark_leader = [&](int64_t addr) {
    auto it = by_addr.find(static_cast<uint32_t>(addr));
    if (it != by_addr.end()) sites[it->second].block_leader = true;
  };

  mark_leader(img.entry);
  for (size_t i = 0; i < sites.size(); ++i) {
    const DecodedSite& s = sites[i];
    const Op op = s.ins.op;
    if (isa::is_relative_branch(op))
      mark_leader(int64_t(s.addr) + 1 + s.ins.k);
    if (op == Op::Jmp || op == Op::Call) mark_leader(s.ins.k);
    if (is_control_transfer(op) && i + 1 < sites.size())
      sites[i + 1].block_leader = true;
    if (is_skip(op)) {
      // Both the skipped instruction's successor and the fall-through are
      // jump targets of the skip.
      if (i + 1 < sites.size()) sites[i + 1].block_leader = true;
      if (i + 2 < sites.size()) sites[i + 2].block_leader = true;
    }
  }

  if (grouping) {
    size_t i = 0;
    while (i < sites.size()) {
      if (!groupable(sites[i].ins)) {
        ++i;
        continue;
      }
      // Extend the group over adjacent groupable accesses through the same
      // index register, stopping at basic-block boundaries. Cap at 4
      // members (word/double-word accesses per the paper).
      size_t j = i + 1;
      while (j < sites.size() && j - i < 4 && groupable(sites[j].ins) &&
             !sites[j].block_leader &&
             isa::pointer_of(sites[j].ins) == isa::pointer_of(sites[i].ins)) {
        ++j;
      }
      if (j - i >= 2) {
        uint8_t qmin = sites[i].ins.q, qmax = sites[i].ins.q;
        for (size_t k = i; k < j; ++k) {
          qmin = std::min(qmin, sites[k].ins.q);
          qmax = std::max(qmax, sites[k].ins.q);
        }
        sites[i].group = GroupRole::Leader;
        sites[i].group_min_q = qmin;
        sites[i].group_span = static_cast<uint8_t>(qmax - qmin);
        for (size_t k = i + 1; k < j; ++k)
          sites[k].group = GroupRole::Follower;
      }
      i = j;
    }
  }

  return sites;
}

size_t count_followers(const std::vector<DecodedSite>& sites) {
  return static_cast<size_t>(
      std::count_if(sites.begin(), sites.end(), [](const DecodedSite& s) {
        return s.group == GroupRole::Follower;
      }));
}

}  // namespace sensmart::rw
