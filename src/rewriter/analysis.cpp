#include "rewriter/analysis.hpp"

#include <algorithm>
#include <map>

namespace sensmart::rw {

using isa::Instruction;
using isa::Op;

namespace {

bool is_control_transfer(Op op) {
  switch (op) {
    case Op::Rjmp:
    case Op::Rcall:
    case Op::Jmp:
    case Op::Call:
    case Op::Ijmp:
    case Op::Icall:
    case Op::Ret:
    case Op::Reti:
    case Op::Brbs:
    case Op::Brbc:
      return true;
    default:
      return false;
  }
}

bool is_skip(Op op) {
  return op == Op::Cpse || op == Op::Sbrc || op == Op::Sbrs ||
         op == Op::Sbic || op == Op::Sbis;
}

// Groupable access: LDD/STD through Y or Z (plain LD Y/Z decode as q = 0).
bool groupable(const Instruction& ins) {
  return ins.op == Op::Ldd || ins.op == Op::Std;
}

}  // namespace

std::vector<DecodedSite> analyze(const assembler::Image& img, bool grouping) {
  std::vector<DecodedSite> sites;
  std::map<uint32_t, size_t> by_addr;

  auto data_range_at = [&img](uint32_t pc) -> const std::pair<uint32_t, uint32_t>* {
    for (const auto& r : img.data_ranges)
      if (pc >= r.first && pc < r.second) return &r;
    return nullptr;
  };

  for (uint32_t pc = 0; pc < img.code.size();) {
    DecodedSite s;
    s.addr = pc;
    if (const auto* r = data_range_at(pc)) {
      s.is_data = true;
      s.size = static_cast<int>(r->second - pc);
      by_addr[pc] = sites.size();
      sites.push_back(s);
      pc = r->second;
      continue;
    }
    s.ins = isa::decode(img.code, pc);
    s.size = isa::size_words(s.ins.op);
    by_addr[pc] = sites.size();
    sites.push_back(s);
    pc += s.size;
  }

  auto mark_leader = [&](int64_t addr) {
    auto it = by_addr.find(static_cast<uint32_t>(addr));
    if (it != by_addr.end()) sites[it->second].block_leader = true;
  };

  mark_leader(img.entry);
  for (size_t i = 0; i < sites.size(); ++i) {
    const DecodedSite& s = sites[i];
    const Op op = s.ins.op;
    if (isa::is_relative_branch(op))
      mark_leader(int64_t(s.addr) + 1 + s.ins.k);
    if (op == Op::Jmp || op == Op::Call) mark_leader(s.ins.k);
    if (is_control_transfer(op) && i + 1 < sites.size())
      sites[i + 1].block_leader = true;
    if (is_skip(op)) {
      // Both the skipped instruction's successor and the fall-through are
      // jump targets of the skip.
      if (i + 1 < sites.size()) sites[i + 1].block_leader = true;
      if (i + 2 < sites.size()) sites[i + 2].block_leader = true;
    }
  }

  if (grouping) {
    size_t i = 0;
    while (i < sites.size()) {
      if (!groupable(sites[i].ins)) {
        ++i;
        continue;
      }
      // Extend the group over adjacent groupable accesses through the same
      // index register, stopping at basic-block boundaries. Cap at 4
      // members (word/double-word accesses per the paper).
      size_t j = i + 1;
      while (j < sites.size() && j - i < 4 && groupable(sites[j].ins) &&
             !sites[j].block_leader &&
             isa::pointer_of(sites[j].ins) == isa::pointer_of(sites[i].ins)) {
        ++j;
      }
      if (j - i >= 2) {
        uint8_t qmin = sites[i].ins.q, qmax = sites[i].ins.q;
        for (size_t k = i; k < j; ++k) {
          qmin = std::min(qmin, sites[k].ins.q);
          qmax = std::max(qmax, sites[k].ins.q);
        }
        sites[i].group = GroupRole::Leader;
        sites[i].group_min_q = qmin;
        sites[i].group_span = static_cast<uint8_t>(qmax - qmin);
        for (size_t k = i + 1; k < j; ++k)
          sites[k].group = GroupRole::Follower;
      }
      i = j;
    }
  }

  return sites;
}

namespace {

// Registers written by `ins` that overlap the pointer pair at `base`
// (26/28/30). Loads and ALU results into r26..r31 rebuild a pointer, so
// its provenance dies; everything else leaves the pair intact.
bool clobbers_pair(const Instruction& ins, uint8_t base) {
  auto hits = [base](uint8_t r) { return r == base || r == base + 1; };
  switch (ins.op) {
    case Op::Add: case Op::Adc: case Op::Sub: case Op::Sbc:
    case Op::And: case Op::Or: case Op::Eor: case Op::Mov:
    case Op::Subi: case Op::Sbci: case Op::Andi: case Op::Ori:
    case Op::Ldi:
    case Op::Com: case Op::Neg: case Op::Swap: case Op::Inc:
    case Op::Dec: case Op::Asr: case Op::Lsr: case Op::Ror:
    case Op::Lds: case Op::Pop: case Op::In:
    case Op::Lpm:
      return hits(ins.rd);
    case Op::Mul:
      return hits(0) || hits(1);
    case Op::LpmR0:
      return hits(0);
    case Op::Adiw: case Op::Sbiw: case Op::Movw:
      return hits(ins.rd) || hits(static_cast<uint8_t>(ins.rd + 1));
    case Op::LpmInc:
      // Reads program memory through Z and post-increments it: Z is no
      // longer a (translated) data pointer afterwards.
      return hits(ins.rd) || base == 30;
    default:
      return false;
  }
}

// Sites whose kernel service may relocate memory regions (stack growth) or
// block the task (after which other tasks run and may trigger relocation):
// any cached translation window is stale afterwards.
bool may_relocate_or_block(const Instruction& ins) {
  if (ins.op == Op::Push || ins.op == Op::Sleep) return true;
  if (ins.op == Op::Out && isa::writes_sp(ins.op, ins.a)) return true;
  // Calls grow the stack too, but they end the basic block anyway and the
  // successor site is a block leader; listed for clarity.
  return isa::is_call(ins.op);
}

int ptr_index(isa::Ptr p) {
  switch (p) {
    case isa::Ptr::X: return 0;
    case isa::Ptr::Y: return 1;
    default: return 2;
  }
}

constexpr uint8_t kPtrBase[3] = {26, 28, 30};

}  // namespace

size_t mark_coalesced(std::vector<DecodedSite>& sites) {
  // Forward scan with three provenance bits: "an indirect access through
  // this pointer has translated it, and neither the pointer nor the region
  // map can have changed since". Block leaders reset all three — control
  // can arrive there from elsewhere, including the backward-branch traps
  // that are the only preemption points (§IV-B), so nothing is live across
  // them.
  bool live[3] = {false, false, false};
  size_t marked = 0;
  for (DecodedSite& s : sites) {
    if (s.is_data || s.block_leader) live[0] = live[1] = live[2] = false;
    if (s.is_data) continue;
    const Instruction& ins = s.ins;

    if (isa::is_mem_indirect(ins.op)) {
      const int p = ptr_index(isa::pointer_of(ins));
      if (live[p] && s.group == GroupRole::None) {
        s.coalesced = true;
        ++marked;
      }
      live[p] = true;
      // A load may overwrite a pointer pair (e.g. LDD r26, Z+4 rebuilds X
      // while dereferencing Z); kill the overwritten pair's provenance —
      // including the dereferenced pointer's own, if the load targets it.
      if (!isa::is_store(ins.op)) {
        for (int o = 0; o < 3; ++o)
          if (ins.rd == kPtrBase[o] || ins.rd == kPtrBase[o] + 1)
            live[o] = false;
      }
      continue;
    }

    if (may_relocate_or_block(ins)) {
      live[0] = live[1] = live[2] = false;
      continue;
    }
    for (int o = 0; o < 3; ++o)
      if (live[o] && clobbers_pair(ins, kPtrBase[o])) live[o] = false;
  }
  return marked;
}

size_t mark_stack_runs(std::vector<DecodedSite>& sites, int cap) {
  if (cap > 4) cap = 4;  // run_regs packs at most 3 followers
  size_t followers = 0;
  size_t i = 0;
  while (i < sites.size()) {
    const Op op = sites[i].ins.op;
    if (sites[i].is_data || (op != Op::Push && op != Op::Pop)) {
      ++i;
      continue;
    }
    // Extend over adjacent same-op sites; a member that is a block leader
    // can be reached from elsewhere and must start its own checked run.
    size_t j = i + 1;
    while (j < sites.size() && j - i < static_cast<size_t>(cap) &&
           sites[j].ins.op == op && !sites[j].is_data &&
           !sites[j].block_leader) {
      ++j;
    }
    if (j - i >= 2) {
      sites[i].stack_run = StackRunRole::Leader;
      sites[i].run_extra = static_cast<uint8_t>(j - i - 1);
      uint16_t regs = 0;
      for (size_t k = i + 1; k < j; ++k) {
        sites[k].stack_run = StackRunRole::Follower;
        regs |= static_cast<uint16_t>((sites[k].ins.rd & 0x1F)
                                      << (5 * (k - i - 1)));
        ++followers;
      }
      sites[i].run_regs = regs;
    }
    i = j;
  }
  return followers;
}

size_t count_followers(const std::vector<DecodedSite>& sites) {
  return static_cast<size_t>(
      std::count_if(sites.begin(), sites.end(), [](const DecodedSite& s) {
        return s.group == GroupRole::Follower;
      }));
}

}  // namespace sensmart::rw
