// Kernel service descriptors — the "trampolines" of §IV-A.
//
// The rewriter replaces each patched instruction with a CALL into a
// trampoline appended after the application code. A trampoline's *body* is
// represented by a Service descriptor: the emulator executes the Break
// marker at the trampoline head and dispatches to the native kernel handler
// for the descriptor, which performs the operation and charges the cycle
// cost the equivalent AVR sequence would take (the cost model is calibrated
// against Table II of the paper). The flash footprint of each trampoline is
// the size a real AVR body of that kind would occupy, so code-inflation
// numbers (Fig. 4) are measured from real flash layout.
//
// Identical descriptors are merged — one trampoline serves every site with
// the same instruction bits, across application programs (§IV-A). This is
// possible because every trampoline is entered by CALL: the return address
// pushed by the CPU identifies the site, and relative-branch targets are
// recomputed from it at run time.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "isa/instruction.hpp"

namespace sensmart::rw {

enum class ServiceKind : uint8_t {
  MemIndirect,      // LD/ST/LDD/STD: logical->physical translation + check
  MemIndirectGrouped,  // follower of a grouped access: pre-translated path
  MemIndirectCoalesced,  // provenance-coalesced access: check-only reuse
                         // tier against the cached translation (§6d)
  MemDirect,        // LDS/STS into the heap: static displacement + check
  MemDirectFast,    // LDS/STS statically proven in-heap: 16-bit
                    // displacement only, no run-time area classification
  ReservedDirect,   // LDS/STS to a kernel-virtualized port (Timer3, host)
  PushPop,          // PUSH/POP: stack bounds check + operation; a stack-run
                    // leader checks the whole collapsed run at once
  CallEnter,        // RCALL/CALL/ICALL: stack check, push, (translated) jump
  Return,           // RET/RETI: underflow check + jump
  IndirectJump,     // IJMP: program-memory address translation (shift table)
  BackwardBranch,   // backward RJMP/BRxx: software-trap counting + branch
  ForwardBranch,    // forward BRxx whose offset no longer fits after rewrite
  SpRead,           // IN from SPL/SPH: physical->logical SP translation
  SpWrite,          // OUT to SPL/SPH: logical->physical SP translation
  Lpm,              // LPM: program-memory data address translation
  SleepOp,          // SLEEP: block the task until its armed wake target
};

inline constexpr int kNumServiceKinds = int(ServiceKind::SleepOp) + 1;

// Flash words a real trampoline body of this kind would occupy (Break
// marker + handler sequence). Derived from hand-written AVR sequences for
// each operation; see DESIGN.md.
int body_words(ServiceKind kind);

// Flash words left in a trampoline of this kind after its handler tail has
// been peephole-merged with the first trampoline of the same kind: the stub
// materializes the operation identity and jumps into the shared tail. Never
// below 2 — the Break marker and the service-index word must stay in place.
int stub_words(ServiceKind kind);

struct Service {
  ServiceKind kind;
  isa::Instruction original;  // the instruction this trampoline stands for
  // Grouped-access metadata: a leader's bounds check covers the window
  // [ptr + group_min, ptr + group_min + group_span]. A PushPop stack-run
  // leader reuses group_span as the count of collapsed followers.
  uint8_t group_min = 0;
  uint8_t group_span = 0;
  // Stack-run leader: follower registers, 5 bits each, in run order.
  uint16_t run_regs = 0;

  // Merging key: services with identical behaviour share one trampoline.
  auto key() const {
    return std::tuple(kind, original.op, original.rd, original.rr,
                      original.k, original.a, original.b, original.q,
                      original.ptr, group_min, group_span, run_regs);
  }
};

// The pool of merged trampolines shared by all programs linked together.
class ServicePool {
 public:
  // Return the index for `svc`, creating it if new. When merging is
  // disabled (ablation / t-kernel mode) every request creates a new entry.
  uint32_t intern(const Service& svc);

  void set_merging(bool on) { merging_ = on; }

  const std::vector<Service>& services() const { return services_; }
  uint32_t total_body_words() const;
  uint32_t requests() const { return requests_; }  // pre-merge count
  // Pre-merge request count per ServiceKind (merge-statistics reporting).
  const std::array<uint32_t, size_t(kNumServiceKinds)>& requests_by_kind()
      const {
    return requests_by_kind_;
  }

 private:
  std::vector<Service> services_;
  std::map<decltype(std::declval<Service>().key()), uint32_t> index_;
  bool merging_ = true;
  uint32_t requests_ = 0;
  std::array<uint32_t, size_t(kNumServiceKinds)> requests_by_kind_{};
};

}  // namespace sensmart::rw
