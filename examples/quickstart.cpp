// Quickstart: write two small mote programs, rewrite them on the "base
// station", link them with shared trampolines, and run them concurrently
// under the SenSmart kernel on the emulated MICA2-class node.
#include <iostream>

#include "sensmart/sensmart.hpp"

using namespace sensmart;

// A program that sums the integers 1..n and reports the 16-bit result.
assembler::Image make_summer(const std::string& name, uint8_t n) {
  assembler::Assembler a(name);
  const uint16_t result = a.var("result", 2);
  a.ldi(16, 0);
  a.ldi(17, 0);
  a.ldi(18, n);
  a.label("loop");
  a.add(16, 18);
  a.ldi(19, 0);
  a.adc(17, 19);
  a.dec(18);
  a.brne("loop");          // a backward branch: preemption trap point
  a.sts(result, 16);       // heap store, translated at run time
  a.sts(uint16_t(result + 1), 17);
  a.lds(20, result);
  a.sts(emu::kHostOut, 20);
  a.lds(20, uint16_t(result + 1));
  a.sts(emu::kHostOut, 20);
  a.halt(0);
  return a.finish();
}

int main() {
  // 1. "Compile" two applications.
  auto app1 = make_summer("sum100", 100);
  auto app2 = make_summer("sum200", 200);

  // 2. Base-station rewriting + linking (Figure 1 of the paper).
  rw::Linker linker;
  linker.add(app1);
  linker.add(app2);
  rw::LinkedSystem sys = linker.link();
  std::cout << "linked " << sys.programs.size() << " naturalized programs, "
            << sys.services.size() << " shared trampolines ("
            << sys.service_requests << " patch sites before merging)\n";
  for (const auto& p : sys.programs)
    std::cout << "  " << p.name << ": " << p.native_bytes << " B native -> "
              << p.rewritten_bytes << " B code + " << p.shift_table_bytes
              << " B shift table (base 0x" << std::hex << p.base << std::dec
              << ")\n";

  // 3. Load onto the emulated mote and run under the kernel.
  emu::Machine machine;
  kern::Kernel kernel(machine, sys);
  kernel.admit_all();
  if (!kernel.start()) {
    std::cerr << "admission failed\n";
    return 1;
  }
  kernel.run(50'000'000);

  // 4. Inspect the results.
  for (const auto& t : kernel.tasks()) {
    std::cout << "task " << int(t.id) << " (" << sys.programs[t.program].name
              << "): " << kern::to_string(t.state);
    if (t.host_out.size() == 2)
      std::cout << ", result = " << (t.host_out[0] | (t.host_out[1] << 8));
    std::cout << ", cpu cycles = " << t.cpu_cycles << "\n";
  }
  std::cout << "context switches: " << kernel.stats().context_switches
            << ", software traps: " << kernel.stats().traps << "\n";
  return 0;
}
