// The paper's motivating workload (§V-D): a sense-and-send application mix
// — one data-feeding task plus several event-driven processing tasks with
// highly dynamic, recursion-driven stacks — running concurrently under
// SenSmart's versatile stack management.
#include <iostream>

#include "apps/treesearch.hpp"
#include "sensmart/sensmart.hpp"

using namespace sensmart;

int main() {
  std::vector<assembler::Image> images;
  images.push_back(apps::data_feed_program(/*rounds=*/16,
                                           /*period_ticks=*/96));
  for (int i = 0; i < 5; ++i) {
    apps::TreeSearchParams p;
    p.nodes_per_tree = 24;
    p.trees = 2;
    p.searches = 48;
    p.seed = uint16_t(0xB00 + 0x333 * i);
    images.push_back(apps::tree_search_program(p));
  }

  sim::RunSpec spec;
  // Deliberately start every task with far less stack than its recursion
  // will need; SenSmart adapts by relocating stacks at run time.
  spec.kernel.initial_stack = 48;
  kern::KernelTrace trace;
  spec.trace = &trace;
  const auto r = sim::run_system(images, spec);

  std::cout << "sense-and-send mix: 1 feeder + 5 search tasks\n";
  std::cout << "stop: " << to_string(r.stop) << ", wall time "
            << sim::Table::num(r.seconds(), 3) << " s, utilization "
            << sim::Table::num(100 * r.utilization(), 1) << " %\n\n";

  sim::Table t({"Task", "State", "Hits", "MaxDepth", "PeakStack(B)",
                "CPU cycles"});
  for (const auto& task : r.tasks) {
    const bool feeder = task.program == 0;
    t.row({feeder ? "feeder" : "search#" + std::to_string(task.id),
           kern::to_string(task.state),
           !feeder && task.host_out.size() == 2
               ? std::to_string(task.host_out[0])
               : "-",
           !feeder && task.host_out.size() == 2
               ? std::to_string(task.host_out[1])
               : "-",
           std::to_string(task.peak_stack_used),
           std::to_string(task.cpu_cycles)});
  }
  t.print();

  std::cout << "\nstack relocations: " << r.kernel_stats.relocations << " ("
            << r.kernel_stats.reloc_bytes_moved << " bytes moved, "
            << r.kernel_stats.reloc_cycles << " cycles)\n";
  std::cout << "time-averaged stack allocation per task: "
            << sim::Table::num(r.avg_stack_alloc, 1) << " B\n";
  std::cout << "every task ran although the initial allocation (48 B) was "
               "far below the ~150-200 B the recursion needs.\n";

  std::cout << "\nfirst kernel events:\n";
  trace.dump(std::cout, 24);
  return 0;
}
