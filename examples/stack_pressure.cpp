// Overcommit demonstration: SenSmart can run a task mix whose *total*
// worst-case stack demand exceeds the physically available stack space,
// because the tasks do not need their maxima at the same time (§I: "even
// when the total needed stack space of all tasks exceeds the total
// available stack space in the physical memory").
#include <iostream>

#include "sensmart/sensmart.hpp"

using namespace sensmart;

// A task that repeatedly recurses to `depth` (using ~17 B per level) and
// then fully unwinds, sleeping between bursts so the peaks interleave.
assembler::Image burst_recurser(const std::string& name, uint8_t depth,
                                uint16_t bursts, uint16_t period_ticks,
                                uint16_t phase) {
  assembler::Assembler a(name);
  a.var("pad", 8);
  a.rjmp("main");

  a.label("rec");  // r17 = remaining depth
  a.cpi(17, 0);
  a.brne("go");
  a.ret();
  a.label("go");
  for (uint8_t r : {2, 3, 4, 5, 6, 7, 10, 11, 12, 13, 14, 15, 18, 19, 28})
    a.push(r);
  a.dec(17);
  a.rcall("rec");
  for (uint8_t r : {28, 19, 18, 15, 14, 13, 12, 11, 10, 7, 6, 5, 4, 3, 2})
    a.pop(r);
  a.ret();

  a.label("main");
  a.ldi16(20, bursts);
  if (phase) {
    a.lds(24, emu::kTcnt3L);
    a.lds(25, emu::kTcnt3H);
    a.ldi16(18, phase);
    a.add(24, 18);
    a.adc(25, 19);
    a.sts(emu::kSleepTargetL, 24);
    a.sts(emu::kSleepTargetH, 25);
    a.sleep();
  }
  a.label("burst");
  a.ldi(17, depth);
  a.rcall("rec");
  // Sleep one period so another task can take its turn at a deep stack.
  a.lds(24, emu::kTcnt3L);
  a.lds(25, emu::kTcnt3H);
  a.ldi16(18, period_ticks);
  a.add(24, 18);
  a.adc(25, 19);
  a.sts(emu::kSleepTargetL, 24);
  a.sts(emu::kSleepTargetH, 25);
  a.sleep();
  a.dec16(20);
  a.brne("burst");
  a.halt(0);
  return a.finish();
}

int main() {
  constexpr int kTasks = 6;
  constexpr uint8_t kDepth = 28;  // ~28 * 17 B = ~480 B peak per task

  std::vector<assembler::Image> images;
  for (int i = 0; i < kTasks; ++i)
    images.push_back(burst_recurser("burst" + std::to_string(i), kDepth, 12,
                                    600, uint16_t(100 * i)));

  sim::RunSpec spec;
  spec.kernel.kernel_ram = 1500;  // squeeze the application area
  spec.kernel.initial_stack = 64;
  const auto r = sim::run_system(images, spec);

  const uint32_t app_space = emu::kDataEnd - 1500 - emu::kSramBase;
  const uint32_t heaps = uint32_t(kTasks) * 8;
  const uint32_t stack_space = app_space - heaps;
  const uint32_t demand = kTasks * (kDepth * 17 + 40);

  std::cout << "stack space available: " << stack_space << " B\n";
  std::cout << "total worst-case demand: ~" << demand << " B ("
            << kTasks << " tasks x ~" << (kDepth * 17 + 40) << " B)\n\n";
  std::cout << "result: " << to_string(r.stop) << ", " << r.completed()
            << "/" << kTasks << " tasks completed, " << r.killed()
            << " killed\n";
  std::cout << "relocations: " << r.kernel_stats.relocations << ", bytes moved: "
            << r.kernel_stats.reloc_bytes_moved << "\n";

  sim::Table t({"Task", "State", "PeakStack(B)"});
  for (const auto& task : r.tasks)
    t.row({"burst" + std::to_string(task.id), kern::to_string(task.state),
           std::to_string(task.peak_stack_used)});
  t.print();

  std::cout << "\nThe mix is overcommitted ~" << (demand / double(stack_space))
            << "x, yet the staggered peaks let versatile stack management "
               "serve every task.\n";
  return 0;
}
