// Inspect the binary rewriting: disassemble a small program before and
// after naturalization, print the shift table and the trampoline pool —
// a view of exactly what the base-station rewriter of §IV-A does.
#include <iomanip>
#include <iostream>

#include "sensmart/sensmart.hpp"

using namespace sensmart;

namespace {

void disassemble(std::span<const uint16_t> code, uint32_t base,
                 const assembler::Image* img) {
  for (uint32_t pc = 0; pc < code.size();) {
    bool data = false;
    if (img)
      for (auto [lo, hi] : img->data_ranges)
        if (pc >= lo && pc < hi) {
          std::cout << "  " << std::setw(4) << (base + pc) << ":  .dw 0x"
                    << std::hex << code[pc] << std::dec << "\n";
          ++pc;
          data = true;
          break;
        }
    if (data) continue;
    const auto ins = isa::decode(code, pc);
    std::cout << "  " << std::setw(4) << (base + pc) << ":  "
              << isa::to_string(ins) << "\n";
    pc += isa::size_words(ins.op);
  }
}

const char* kind_name(rw::ServiceKind k) {
  using enum rw::ServiceKind;
  switch (k) {
    case MemIndirect: return "mem-indirect";
    case MemIndirectGrouped: return "mem-grouped";
    case MemIndirectCoalesced: return "mem-coalesced";
    case MemDirect: return "mem-direct";
    case MemDirectFast: return "mem-direct-fast";
    case ReservedDirect: return "reserved-port";
    case PushPop: return "push/pop";
    case CallEnter: return "call-enter";
    case Return: return "return";
    case IndirectJump: return "indirect-jump";
    case BackwardBranch: return "backward-branch";
    case ForwardBranch: return "forward-branch";
    case SpRead: return "sp-read";
    case SpWrite: return "sp-write";
    case Lpm: return "lpm";
    case SleepOp: return "sleep";
  }
  return "?";
}

}  // namespace

int main() {
  // A tiny program exercising several patch classes.
  assembler::Assembler a("demo");
  const uint16_t v = a.var("v", 2);
  a.ldi(16, 5);
  a.label("loop");
  a.push(16);
  a.pop(17);
  a.sts(v, 17);        // heap direct
  a.lds(18, emu::kPortB);  // plain I/O: stays native
  a.dec(16);
  a.brne("loop");      // backward branch
  a.halt(0);
  const auto img = a.finish();

  std::cout << "=== original (" << img.code_bytes() << " bytes) ===\n";
  disassemble(img.code, 0, &img);

  rw::Linker linker;
  linker.add(img);
  const auto sys = linker.link();
  const auto& p = sys.programs[0];

  std::cout << "\n=== naturalized (" << p.rewritten_bytes
            << " bytes at base " << p.base << ") ===\n";
  disassemble(std::span(sys.flash).subspan(p.base, p.nat_words), p.base,
              nullptr);

  std::cout << "\n=== shift table (" << p.map.entries()
            << " inflated sites) ===\n  original word addresses:";
  for (uint32_t site : p.map.inflated_sites()) std::cout << " " << site;
  std::cout << "\n  e.g. original " << 0 << " -> naturalized "
            << p.map.to_naturalized(0) << "; original 4 -> "
            << p.map.to_naturalized(4) << "\n";

  std::cout << "\n=== trampoline pool (" << sys.services.size()
            << " merged from " << sys.service_requests << " sites) ===\n";
  for (size_t i = 0; i < sys.services.size(); ++i) {
    const auto& s = sys.services[i];
    std::cout << "  @" << sys.service_addr[i] << "  " << kind_name(s.kind)
              << "  [" << isa::to_string(s.original) << "]\n";
  }

  std::cout << "\ninflation: " << sim::Table::num(p.inflation())
            << "x (code " << p.rewritten_bytes << " + shift "
            << p.shift_table_bytes << " + trampolines "
            << p.trampoline_bytes << " over native " << p.native_bytes
            << ")\n";
  return 0;
}
